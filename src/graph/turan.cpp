#include "graph/turan.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "graph/subgraph.h"

namespace cclique {

namespace {

// Tries to properly color h with c colors by backtracking.
bool colorable(const Graph& h, int c, int v, std::vector<int>& color) {
  if (v == h.num_vertices()) return true;
  // Symmetry breaking: vertex v may only open one new color.
  int max_used = 0;
  for (int u = 0; u < v; ++u) max_used = std::max(max_used, color[static_cast<std::size_t>(u)] + 1);
  for (int col = 0; col < std::min(c, max_used + 1); ++col) {
    bool ok = true;
    for (int u : h.neighbors(v)) {
      if (u < v && color[static_cast<std::size_t>(u)] == col) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    color[static_cast<std::size_t>(v)] = col;
    if (colorable(h, c, v + 1, color)) return true;
  }
  color[static_cast<std::size_t>(v)] = -1;
  return false;
}

bool is_forest(const Graph& h) {
  // A forest has girth -1 (acyclic).
  return girth(h) < 0;
}

// Is h exactly a cycle C_len (as a graph: connected, 2-regular)?
bool is_cycle_graph(const Graph& h, int* len) {
  const int n = h.num_vertices();
  if (n < 3 || h.num_edges() != static_cast<std::size_t>(n)) return false;
  for (int v = 0; v < n; ++v) {
    if (h.degree(v) != 2) return false;
  }
  // Connected 2-regular with m = n: a single cycle.
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> stack{0};
  seen[0] = true;
  int visited = 0;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    ++visited;
    for (int u : h.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = true;
        stack.push_back(u);
      }
    }
  }
  if (visited != n) return false;
  *len = n;
  return true;
}

bool is_complete(const Graph& h) {
  const std::uint64_t n = static_cast<std::uint64_t>(h.num_vertices());
  return h.num_edges() == n * (n - 1) / 2;
}

}  // namespace

int chromatic_number(const Graph& h) {
  const int n = h.num_vertices();
  if (n == 0) return 0;
  if (h.num_edges() == 0) return 1;
  for (int c = 2; c <= n; ++c) {
    std::vector<int> color(static_cast<std::size_t>(n), -1);
    if (colorable(h, c, 0, color)) return c;
  }
  return n;
}

bool bipartition_sizes(const Graph& h, int* a, int* b) {
  const int n = h.num_vertices();
  std::vector<int> side(static_cast<std::size_t>(n), -1);
  int left = 0, right = 0;
  for (int s = 0; s < n; ++s) {
    if (side[static_cast<std::size_t>(s)] != -1) continue;
    side[static_cast<std::size_t>(s)] = 0;
    ++left;
    std::vector<int> queue{s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      int v = queue[head];
      for (int u : h.neighbors(v)) {
        if (side[static_cast<std::size_t>(u)] == -1) {
          side[static_cast<std::size_t>(u)] = 1 - side[static_cast<std::size_t>(v)];
          (side[static_cast<std::size_t>(u)] == 0 ? left : right)++;
          queue.push_back(u);
        } else if (side[static_cast<std::size_t>(u)] == side[static_cast<std::size_t>(v)]) {
          return false;
        }
      }
    }
  }
  *a = std::min(left, right);
  *b = std::max(left, right);
  return true;
}

TuranBound turan_upper_bound(std::uint64_t n, const Graph& h) {
  CC_REQUIRE(h.num_vertices() >= 2 && h.num_edges() >= 1,
             "pattern must have at least one edge");
  const double dn = static_cast<double>(n);

  if (is_forest(h)) {
    // A graph with > (k-1)n edges has a subgraph of min degree >= k and thus
    // contains every forest with k edges.
    const double k = static_cast<double>(h.num_edges());
    return TuranBound{(k - 1.0) * dn + dn, false, "min-degree forest embedding"};
  }

  int cyc_len = 0;
  if (is_cycle_graph(h, &cyc_len)) {
    if (cyc_len % 2 == 1) {
      // Odd cycle: bipartite graphs avoid it; ex = floor(n^2/4) for n large.
      return TuranBound{dn * dn / 4.0, true, "bipartite extremal (odd cycle)"};
    }
    if (cyc_len == 4) {
      // Reiman: ex(n, C4) <= (1 + sqrt(4n-3)) n / 4.
      return TuranBound{(1.0 + std::sqrt(4.0 * dn - 3.0)) * dn / 4.0, false,
                        "Reiman (C4)"};
    }
    // Bondy–Simonovits: ex(n, C_{2l}) <= c * l * n^{1+1/l}; c = 8 is a safe
    // published constant (Pikhurko's refinement gives (l-1) + o(1)).
    const double l = static_cast<double>(cyc_len) / 2.0;
    return TuranBound{8.0 * l * std::pow(dn, 1.0 + 1.0 / l), false,
                      "Bondy–Simonovits (even cycle)"};
  }

  int a = 0, b = 0;
  if (bipartition_sizes(h, &a, &b)) {
    // H is a subgraph of K_{a,b}; Kővári–Sós–Turán on K_{a,b} dominates.
    const double r = static_cast<double>(std::max(a, 1));
    const double s = static_cast<double>(std::max(b, 1));
    const double kst = 0.5 * (std::pow(s - 1.0, 1.0 / r) * (dn - r + 1.0) *
                                  std::pow(dn, 1.0 - 1.0 / r) +
                              (r - 1.0) * dn);
    return TuranBound{kst, false, "Kővári–Sós–Turán"};
  }

  const int chi = chromatic_number(h);
  const double turan = (1.0 - 1.0 / (static_cast<double>(chi) - 1.0)) * dn * dn / 2.0;
  if (is_complete(h)) {
    return TuranBound{turan, true, "Turán's theorem"};
  }
  // Erdős–Stone: asymptotically exact; as a finite-n upper bound we pad with
  // the full quadratic term only when needed — the Turán density term plus a
  // linear slack of n is a safe envelope for the small patterns used here.
  return TuranBound{turan + dn, false, "Erdős–Stone envelope"};
}

int degeneracy_cap_if_h_free(std::uint64_t n, const Graph& h) {
  if (n == 0) return 1;
  const TuranBound bound = turan_upper_bound(n, h);
  double cap = 4.0 * bound.value / static_cast<double>(n);
  if (cap < 1.0) cap = 1.0;
  if (cap > static_cast<double>(n)) cap = static_cast<double>(n);
  return static_cast<int>(cap);
}

}  // namespace cclique
