#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace cclique {

Graph::Graph(int n) : n_(n) {
  CC_REQUIRE(n >= 0, "graph size must be non-negative");
  adj_.resize(static_cast<std::size_t>(n));
  bits_.assign(static_cast<std::size_t>(n),
               std::vector<std::uint64_t>((static_cast<std::size_t>(n) + 63) / 64, 0));
}

bool Graph::add_edge(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  CC_REQUIRE(u != v, "self-loops are not allowed");
  if (has_edge(u, v)) return false;
  bits_[u][static_cast<std::size_t>(v) >> 6] |= 1ULL << (static_cast<std::size_t>(v) & 63);
  bits_[v][static_cast<std::size_t>(u) >> 6] |= 1ULL << (static_cast<std::size_t>(u) & 63);
  adj_[u].insert(std::lower_bound(adj_[u].begin(), adj_[u].end(), v), v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++m_;
  return true;
}

bool Graph::remove_edge(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  if (u == v || !has_edge(u, v)) return false;
  bits_[u][static_cast<std::size_t>(v) >> 6] &= ~(1ULL << (static_cast<std::size_t>(v) & 63));
  bits_[v][static_cast<std::size_t>(u) >> 6] &= ~(1ULL << (static_cast<std::size_t>(u) & 63));
  adj_[u].erase(std::lower_bound(adj_[u].begin(), adj_[u].end(), v));
  adj_[v].erase(std::lower_bound(adj_[v].begin(), adj_[v].end(), u));
  --m_;
  return true;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m_);
  for (int u = 0; u < n_; ++u) {
    for (int v : adj_[u]) {
      if (v > u) out.emplace_back(u, v);
    }
  }
  return out;
}

Graph Graph::induced_subgraph(const std::vector<int>& vertices) const {
  Graph g(static_cast<int>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      CC_REQUIRE(vertices[i] != vertices[j],
                 "induced_subgraph vertices must be distinct");
      if (has_edge(vertices[i], vertices[j])) {
        g.add_edge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return g;
}

Graph Graph::relabeled(const std::vector<int>& perm) const {
  CC_REQUIRE(static_cast<int>(perm.size()) == n_, "permutation size mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(n_), false);
  for (int p : perm) {
    CC_REQUIRE(p >= 0 && p < n_ && !seen[static_cast<std::size_t>(p)],
               "relabeled() needs a permutation");
    seen[static_cast<std::size_t>(p)] = true;
  }
  Graph g(n_);
  for (int u = 0; u < n_; ++u) {
    for (int v : adj_[u]) {
      if (v > u) g.add_edge(perm[static_cast<std::size_t>(u)], perm[static_cast<std::size_t>(v)]);
    }
  }
  return g;
}

Graph Graph::disjoint_union(const Graph& other) const {
  Graph g(n_ + other.n_);
  for (const Edge& e : edges()) g.add_edge(e.u, e.v);
  for (const Edge& e : other.edges()) g.add_edge(e.u + n_, e.v + n_);
  return g;
}

int Graph::common_neighbor_count(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  const auto& a = bits_[u];
  const auto& b = bits_[v];
  int count = 0;
  for (std::size_t w = 0; w < a.size(); ++w) {
    count += __builtin_popcountll(a[w] & b[w]);
  }
  return count;
}

int Graph::max_degree() const {
  int d = 0;
  for (int v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << m_ << ")";
  for (int v = 0; v < n_; ++v) {
    if (adj_[v].empty()) continue;
    os << "\n  " << v << ":";
    for (int u : adj_[v]) os << ' ' << u;
  }
  return os.str();
}

}  // namespace cclique
