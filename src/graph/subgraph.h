// Exact subgraph containment: ground truth for every detection protocol.
//
// All pattern graphs H in the paper are of fixed (constant) size, so a
// backtracking search with degree pruning is exact and fast enough to serve
// as the reference oracle in tests and benches. Specialized routines cover
// the hot cases (triangles, cliques).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace cclique {

/// A triangle as an ordered vertex triple (a < b < c).
struct Triangle {
  int a = 0, b = 0, c = 0;
  bool operator==(const Triangle& o) const {
    return a == o.a && b == o.b && c == o.c;
  }
  bool operator<(const Triangle& o) const {
    if (a != o.a) return a < o.a;
    if (b != o.b) return b < o.b;
    return c < o.c;
  }
};

/// Exact triangle count via bitset intersections, O(m * n / 64).
std::uint64_t count_triangles(const Graph& g);

/// Exact count of 4-cycles (as subgraphs, i.e. unordered vertex sets
/// carrying a C4): every C4 is determined by its two diagonal pairs, so
/// 2 * #C4 = sum over unordered pairs {u, v} of C(codeg(u, v), 2). Bitset
/// codegrees make this O(n^2 * n / 64) — the ground truth the algebraic
/// trace-based counter (core/algebraic_mm) is checked against.
std::uint64_t count_four_cycles(const Graph& g);

/// Lists all triangles (a < b < c).
std::vector<Triangle> list_triangles(const Graph& g);

/// True iff g contains K_k as a subgraph.
bool contains_clique(const Graph& g, int k);

/// Generic subgraph-containment test: does g contain a (not necessarily
/// induced) copy of pattern h? Exponential in |V(h)| only.
bool contains_subgraph(const Graph& g, const Graph& h);

/// Like contains_subgraph, but returns the embedding: result[i] is the
/// g-vertex hosting h-vertex i. nullopt if no copy exists.
std::optional<std::vector<int>> find_subgraph(const Graph& g, const Graph& h);

/// Counts (labelled) embeddings of h into g, i.e. the number of injective
/// maps V(h) -> V(g) preserving edges. Useful for density assertions in
/// lower-bound gadget tests. Beware: grows like n^{|V(h)|}.
std::uint64_t count_subgraph_embeddings(const Graph& g, const Graph& h);

/// Calls `visitor` with every embedding of h into g (assignment[i] = host of
/// h-vertex i). Enumeration stops early when the visitor returns false.
/// Visits labelled embeddings (automorphic images visited separately).
void for_each_embedding(const Graph& g, const Graph& h,
                        const std::function<bool(const std::vector<int>&)>& visitor);

/// True iff g contains a cycle of length exactly `len` (len >= 3).
bool contains_cycle(const Graph& g, int len);

/// Girth of g (length of its shortest cycle), or -1 if acyclic. BFS from
/// every vertex: O(n * m).
int girth(const Graph& g);

}  // namespace cclique
