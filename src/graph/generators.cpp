#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cclique {

Graph complete_graph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph cycle_graph(int n) {
  CC_REQUIRE(n >= 3, "a cycle needs at least 3 vertices");
  Graph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph path_graph(int n) {
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph star_graph(int n) {
  CC_REQUIRE(n >= 1, "a star needs at least 1 vertex");
  Graph g(n);
  for (int v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph complete_bipartite(int a, int b) {
  Graph g(a + b);
  for (int u = 0; u < a; ++u) {
    for (int v = 0; v < b; ++v) g.add_edge(u, a + v);
  }
  return g;
}

Graph gnp(int n, double p, Rng& rng) {
  Graph g(n);
  if (p <= 0.0) return g;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (p >= 1.0 || rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

std::vector<Edge> gnp_edges(int n, double p, Rng& rng) {
  CC_REQUIRE(n >= 0, "negative vertex count");
  std::vector<Edge> edges;
  if (n < 2 || p <= 0.0) return edges;
  if (p >= 1.0) {
    for (int v = 1; v < n; ++v) {
      for (int u = 0; u < v; ++u) edges.push_back(Edge(u, v));
    }
    return edges;
  }
  // Batagelj & Brandes (2005): walk the pairs (w, v), w < v, in order of
  // larger endpoint, jumping geometric(p) gaps so only present edges cost
  // work. One uniform draw per edge (plus one final miss).
  const double log_q = std::log1p(-p);
  int v = 1;
  std::int64_t w = -1;
  while (v < n) {
    const double r = rng.uniform_double();
    // skip ~ Geometric(p): floor(log(1-r) / log(1-p)) pairs absent in a row
    w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / log_q));
    while (v < n && w >= v) {
      w -= v;
      ++v;
    }
    if (v < n) edges.push_back(Edge(static_cast<int>(w), v));
  }
  return edges;
}

Graph gnm(int n, std::size_t m, Rng& rng) {
  const std::size_t max_m =
      static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) - 1) / 2;
  CC_REQUIRE(m <= max_m, "gnm: too many edges requested");
  Graph g(n);
  // Rejection sampling is fine below half density; otherwise sample the
  // complement's edges to delete from K_n.
  if (m <= max_m / 2) {
    while (g.num_edges() < m) {
      int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      if (u != v) g.add_edge(u, v);
    }
  } else {
    g = complete_graph(n);
    while (g.num_edges() > m) {
      int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
      if (u != v) g.remove_edge(u, v);
    }
  }
  return g;
}

Graph random_tree(int n, Rng& rng) {
  CC_REQUIRE(n >= 1, "a tree needs at least 1 vertex");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Prüfer decoding gives a uniform labelled tree.
  std::vector<int> prufer(static_cast<std::size_t>(n - 2));
  for (auto& x : prufer) x = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (int x : prufer) ++deg[static_cast<std::size_t>(x)];
  // Repeatedly attach the smallest remaining leaf to the next Prüfer label.
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (int x : prufer) {
    int leaf = -1;
    for (int v = 0; v < n; ++v) {
      if (deg[static_cast<std::size_t>(v)] == 1 && !used[static_cast<std::size_t>(v)]) {
        leaf = v;
        break;
      }
    }
    g.add_edge(leaf, x);
    used[static_cast<std::size_t>(leaf)] = true;
    --deg[static_cast<std::size_t>(x)];
  }
  int a = -1, b = -1;
  for (int v = 0; v < n; ++v) {
    if (!used[static_cast<std::size_t>(v)] && deg[static_cast<std::size_t>(v)] == 1) {
      (a < 0 ? a : b) = v;
    }
  }
  g.add_edge(a, b);
  return g;
}

std::vector<int> plant_subgraph(Graph& g, const Graph& h, Rng& rng) {
  CC_REQUIRE(h.num_vertices() <= g.num_vertices(),
             "plant_subgraph: pattern larger than host");
  std::vector<int> pool(static_cast<std::size_t>(g.num_vertices()));
  std::iota(pool.begin(), pool.end(), 0);
  rng.shuffle(pool);
  pool.resize(static_cast<std::size_t>(h.num_vertices()));
  for (const Edge& e : h.edges()) {
    g.add_edge(pool[static_cast<std::size_t>(e.u)], pool[static_cast<std::size_t>(e.v)]);
  }
  return pool;
}

Graph shuffled(const Graph& g, Rng& rng) {
  std::vector<int> perm(static_cast<std::size_t>(g.num_vertices()));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  return g.relabeled(perm);
}

}  // namespace cclique
