#include "graph/sampling.h"

#include "util/math_util.h"

namespace cclique {

std::vector<std::uint64_t> draw_sampling_values(int n, Rng& rng) {
  CC_REQUIRE(n >= 1, "need at least one node");
  const std::uint64_t big_n = 1ULL << floor_log2(static_cast<std::uint64_t>(n));
  std::vector<std::uint64_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(big_n);
  return x;
}

Graph mod_sampled_subgraph(const Graph& g, const std::vector<std::uint64_t>& x,
                           int j) {
  CC_REQUIRE(static_cast<int>(x.size()) == g.num_vertices(),
             "one sampling value per vertex required");
  CC_REQUIRE(j >= 0 && j < 64, "level out of range");
  Graph out(g.num_vertices());
  const std::uint64_t mask = (j == 0) ? 0 : ((1ULL << j) - 1);
  for (const Edge& e : g.edges()) {
    if ((x[static_cast<std::size_t>(e.u)] & mask) ==
        (x[static_cast<std::size_t>(e.v)] & mask)) {
      out.add_edge(e.u, e.v);
    }
  }
  return out;
}

std::vector<Graph> mod_sampled_hierarchy(const Graph& g,
                                         const std::vector<std::uint64_t>& x) {
  const int l = floor_log2(static_cast<std::uint64_t>(std::max(1, g.num_vertices())));
  std::vector<Graph> levels;
  levels.reserve(static_cast<std::size_t>(l) + 1);
  for (int j = 0; j <= l; ++j) levels.push_back(mod_sampled_subgraph(g, x, j));
  return levels;
}

}  // namespace cclique
