// Ruzsa–Szemerédi graphs: tripartite graphs in which every edge lies in
// exactly one triangle, with n^2 / e^{O(sqrt(log n))} triangles (Claim 23).
//
// These are the gadget family behind the Theorem 24 reduction from 3-party
// number-on-forehead set disjointness to triangle detection: each
// edge-disjoint triangle carries one element of the disjointness instance.
// The construction is the classical one from progression-free sets: take a
// 3-AP-free S ⊆ [m] (Behrend's construction) and form the tripartite graph
// on X = [m], Y = [2m], Z = [3m] whose canonical triangles are
// (x, x+s, x+2s) for x in X, s in S.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/subgraph.h"

namespace cclique {

/// A 3-term-arithmetic-progression-free subset of {0, ..., m-1}.
/// Uses Behrend's sphere construction (digits in base 2d with fixed
/// Euclidean norm), taking the best shell; falls back to a greedy first-fit
/// set for tiny m. The result is sorted.
std::vector<std::uint64_t> behrend_set(std::uint64_t m);

/// Exhaustively verifies that S is 3-AP-free: no x + y = 2z with x != y.
bool is_progression_free(const std::vector<std::uint64_t>& s);

/// A Ruzsa–Szemerédi tripartite graph built from parameter m.
struct RuzsaSzemerediGraph {
  Graph graph;                 ///< 6m vertices: X = [0,m), Y = [m,3m), Z = [3m,6m)
  int m = 0;                   ///< part-size parameter
  std::vector<Triangle> triangles;  ///< the canonical edge-disjoint triangles
};

/// Builds the RS graph for parameter m >= 1. Guarantees (tested exactly):
/// every edge lies in exactly one triangle, and the triangles listed are all
/// triangles of the graph; their number is m * |behrend_set(m)|.
RuzsaSzemerediGraph ruzsa_szemeredi_graph(int m);

}  // namespace cclique
