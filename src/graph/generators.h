// Standard graph generators used as protocol workloads and test fixtures.
#pragma once

#include "graph/graph.h"
#include "util/rng.h"

namespace cclique {

/// Complete graph K_n.
Graph complete_graph(int n);

/// Simple cycle C_n (n >= 3).
Graph cycle_graph(int n);

/// Simple path P_n on n vertices (n-1 edges).
Graph path_graph(int n);

/// Star K_{1,n-1}; vertex 0 is the center.
Graph star_graph(int n);

/// Complete bipartite K_{a,b}; left side is {0..a-1}, right {a..a+b-1}.
Graph complete_bipartite(int a, int b);

/// Erdős–Rényi G(n, p): each edge present independently with probability p.
Graph gnp(int n, double p, Rng& rng);

/// G(n, p) as a bare edge list, without materializing a Graph (no O(n^2)
/// adjacency bitsets): Batagelj–Brandes geometric skipping visits only the
/// present edges, so sampling costs O(n + m) — the entry point for sparse
/// workloads at n beyond the dense cap (pairs with Csr61::from_edges).
/// Edges come out canonical (u < v), sorted by larger endpoint then
/// smaller. Note the sampling path differs from gnp's per-pair Bernoulli
/// scan, so the two draw different graphs from the same seed.
std::vector<Edge> gnp_edges(int n, double p, Rng& rng);

/// Uniform G(n, m): exactly m distinct edges chosen uniformly.
Graph gnm(int n, std::size_t m, Rng& rng);

/// Uniform random labelled tree on n vertices (Prüfer sequence).
Graph random_tree(int n, Rng& rng);

/// Plants a copy of `h` into `g` on a uniformly random set of |V(h)|
/// distinct vertices of `g` (adds the mapped edges; existing edges are
/// kept). Returns the image vertices in h-vertex order.
std::vector<int> plant_subgraph(Graph& g, const Graph& h, Rng& rng);

/// Random permutation of vertex labels; useful to destroy any structure a
/// construction's labelling might leak to a detection algorithm.
Graph shuffled(const Graph& g, Rng& rng);

}  // namespace cclique
