// Turán numbers ex(n, H) and the degeneracy bound of Claim 6.
//
// The broadcast-clique upper bounds (Theorems 7 and 9) consume ex(n, H) as a
// parameter: an H-free graph has degeneracy at most 4*ex(n,H)/n (Claim 6),
// which is exactly the sketch size the Becker-et-al. protocol needs. For
// most bipartite H the exact Turán number is open, so this module exposes
// *upper bounds* from the classical extremal-graph-theory toolbox (Turán,
// Kővári–Sós–Turán, Bondy–Simonovits, Reiman); an upper bound on ex is all
// the algorithmic side ever needs.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace cclique {

/// A Turán-number upper bound along with whether it is exact.
struct TuranBound {
  double value = 0.0;
  bool exact = false;
  /// Human-readable provenance ("Turán's theorem", "Kővári–Sós–Turán", ...).
  const char* source = "";
};

/// Chromatic number of a small graph (exhaustive; |V(h)| <= ~16).
int chromatic_number(const Graph& h);

/// If h is bipartite, returns true and fills the side sizes (a <= b) of some
/// proper 2-coloring; otherwise returns false.
bool bipartition_sizes(const Graph& h, int* a, int* b);

/// Upper bound on ex(n, H) for an arbitrary fixed pattern H:
///   - chi(H) >= 3: Turán bound (1 - 1/(chi-1)) n^2 / 2 (exact for cliques,
///     asymptotically exact in general by Erdős–Stone);
///   - H a forest with k edges: (k-1) n (every graph with more edges has a
///     subgraph of min degree >= k, which contains every k-edge tree);
///   - H = C4: Reiman bound (1 + sqrt(4n-3)) n / 4;
///   - H an even cycle C_{2l}: Bondy–Simonovits-style c * n^{1 + 1/l};
///   - other bipartite H with bipartition (r, s), r <= s: Kővári–Sós–Turán
///     0.5 ((s-1)^{1/r} (n - r + 1) n^{1 - 1/r} + (r - 1) n).
TuranBound turan_upper_bound(std::uint64_t n, const Graph& h);

/// Claim 6: an H-free n-vertex graph has degeneracy <= 4 ex(n,H)/n. Returns
/// that cap (rounded down, at least 1) computed from turan_upper_bound.
int degeneracy_cap_if_h_free(std::uint64_t n, const Graph& h);

}  // namespace cclique
