// Degeneracy and degeneracy orderings.
//
// The degeneracy of G is the smallest k such that every subgraph of G has a
// vertex of degree at most k. It drives both directions of Section 3 of the
// paper: the Becker-et-al. reconstruction works exactly when degeneracy <= k
// (Theorem 7 / 9 upper bounds), and Claim 6 bounds the degeneracy of H-free
// graphs by 4*ex(n,H)/n.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace cclique {

/// Result of the linear-time peeling computation.
struct DegeneracyResult {
  int degeneracy = 0;
  /// Elimination order: order[i] is the i-th peeled vertex; every vertex has
  /// at most `degeneracy` neighbors later in this order.
  std::vector<int> order;
};

/// Computes degeneracy and a witnessing elimination order via bucket peeling
/// (O(n + m)).
DegeneracyResult compute_degeneracy(const Graph& g);

/// Verifies that `order` is an elimination order witnessing degeneracy <= k,
/// i.e. each vertex has at most k neighbors appearing later in the order.
bool is_elimination_order(const Graph& g, const std::vector<int>& order, int k);

}  // namespace cclique
