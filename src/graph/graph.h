// Undirected simple graph with O(1) adjacency queries.
//
// Graphs are the workload objects of the whole library: protocol inputs,
// lower-bound gadgets, and extremal constructions. The representation keeps
// both sorted adjacency lists (for iteration) and packed bitset rows (for
// constant-time has_edge and fast triangle counting); sizes in this project
// stay laptop-scale (n up to a few thousand), so the O(n^2/8) bitset memory
// is cheap insurance for algorithmic clarity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace cclique {

/// An undirected edge; canonical form keeps u < v.
struct Edge {
  int u = 0;
  int v = 0;
  Edge() = default;
  Edge(int a, int b) : u(a < b ? a : b), v(a < b ? b : a) {}
  bool operator==(const Edge& o) const { return u == o.u && v == o.v; }
  bool operator<(const Edge& o) const {
    return u != o.u ? u < o.u : v < o.v;
  }
};

/// Undirected simple graph on vertices {0, ..., n-1}.
class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph with n vertices.
  explicit Graph(int n);

  /// Number of vertices.
  int num_vertices() const { return n_; }

  /// Number of edges.
  std::size_t num_edges() const { return m_; }

  /// Adds edge {u, v}. Self-loops are rejected; duplicate insertions are
  /// idempotent. Returns true iff the edge was newly added.
  bool add_edge(int u, int v);

  /// Removes edge {u, v} if present. Returns true iff it was removed.
  bool remove_edge(int u, int v);

  /// O(1) adjacency query.
  bool has_edge(int u, int v) const {
    check_vertex(u);
    check_vertex(v);
    return u != v && (bits_[u][static_cast<std::size_t>(v) >> 6] >>
                      (static_cast<std::size_t>(v) & 63)) & 1ULL;
  }

  /// Degree of v.
  int degree(int v) const {
    check_vertex(v);
    return static_cast<int>(adj_[v].size());
  }

  /// Sorted neighbor list of v.
  const std::vector<int>& neighbors(int v) const {
    check_vertex(v);
    return adj_[v];
  }

  /// All edges in canonical (u < v) order, lexicographically sorted.
  std::vector<Edge> edges() const;

  /// Subgraph induced by `vertices` (which must be distinct). Vertex i of
  /// the result corresponds to vertices[i].
  Graph induced_subgraph(const std::vector<int>& vertices) const;

  /// Returns the graph with vertices renamed by `perm` (perm[v] is the new
  /// name of v; must be a permutation of 0..n-1).
  Graph relabeled(const std::vector<int>& perm) const;

  /// Disjoint union: vertices of `other` are shifted by num_vertices().
  Graph disjoint_union(const Graph& other) const;

  /// Number of common neighbors of u and v (bitset intersection).
  int common_neighbor_count(int u, int v) const;

  /// Packed adjacency row of v (used by triangle-counting hot loops).
  const std::vector<std::uint64_t>& adjacency_row(int v) const {
    check_vertex(v);
    return bits_[v];
  }

  /// Maximum degree.
  int max_degree() const;

  bool operator==(const Graph& other) const {
    return n_ == other.n_ && bits_ == other.bits_;
  }

  /// Multi-line human-readable dump (for small graphs in test failures).
  std::string to_string() const;

 private:
  void check_vertex(int v) const {
    CC_REQUIRE(v >= 0 && v < n_, "vertex id out of range");
  }

  int n_ = 0;
  std::size_t m_ = 0;
  std::vector<std::vector<int>> adj_;            // sorted neighbor lists
  std::vector<std::vector<std::uint64_t>> bits_; // packed adjacency rows
};

}  // namespace cclique
