// The non-uniform edge sampling of Section 3.1 (Lemma 8).
//
// Independently sampling each edge with probability p cannot be communicated
// in o(m) bits, so the paper samples via per-*node* random values: each node
// v draws X_v uniformly from [0, N) (N = largest power of two <= n) and edge
// {u, v} survives into level j iff X_u = X_v (mod 2^j). Broadcasting the
// X_v's (O(log n) bits each) lets every node learn the entire sampled
// hierarchy G_0 ⊇ G_1 ⊇ ... ⊇ G_l.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace cclique {

/// Draws the per-node sampling values X_v, uniform on [0, N) where N is the
/// largest power of two not exceeding n (N = 2^{floor(log2 n)}).
std::vector<std::uint64_t> draw_sampling_values(int n, Rng& rng);

/// Level-j sampled subgraph: keeps edge {u,v} iff X_u ≡ X_v (mod 2^j).
/// j = 0 returns G itself.
Graph mod_sampled_subgraph(const Graph& g, const std::vector<std::uint64_t>& x,
                           int j);

/// All levels G_0, ..., G_l with l = floor(log2 n).
std::vector<Graph> mod_sampled_hierarchy(const Graph& g,
                                         const std::vector<std::uint64_t>& x);

}  // namespace cclique
