// Dense H-free "extremal" constructions.
//
// The Section 3 lower bounds instantiate Definition 10 with a dense H-free
// graph F: the denser F is, the larger the set-disjointness instance and the
// stronger the implied round lower bound. This module provides the concrete
// families the paper leans on:
//   * Turán graphs (complete balanced multipartite) — clique-free extremal;
//   * the Erdős–Rényi polarity graph ER_q of PG(2,q) — C4-free with
//     (1/2) q (q+1)^2 edges on q^2+q+1 vertices, i.e. Θ(n^{3/2});
//   * the point-line incidence graph of PG(2,q) — bipartite, girth 6;
//   * greedy high-girth graphs — C_l-free fallback for arbitrary l.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace cclique {

/// Complete balanced r-partite Turán graph on n vertices (K_{r+1}-free,
/// extremal by Turán's theorem).
Graph turan_graph(int n, int r);

/// Erdős–Rényi polarity graph ER_q for a prime q: vertices are the points
/// of PG(2, q) (projective plane over F_q), with x ~ y iff x·y = 0 (mod q)
/// and x != y. C4-free; n = q^2 + q + 1; m = q(q+1)^2/2 - (absolute points
/// adjustment). The standard witness that ex(n, C4) = Θ(n^{3/2}).
Graph polarity_graph(std::uint64_t q);

/// Bipartite point-line incidence graph of PG(2, q) for a prime q:
/// 2(q^2+q+1) vertices, (q+1)(q^2+q+1) edges, girth 6 (so C4-free).
Graph incidence_graph_pg2(std::uint64_t q);

/// Greedy graph with girth > `min_girth_exclusive` on n vertices: candidate
/// edges are tried in random order and kept when no short cycle appears.
/// Produces Ω(n^{1 + 1/(g-1)})-ish densities — not extremal, but a valid
/// C_l-free host for every l <= min_girth_exclusive.
Graph high_girth_graph(int n, int min_girth_exclusive, Rng& rng);

/// A dense C_l-free graph on n vertices (the "F" of Lemma 18):
///   * odd l  -> complete balanced bipartite graph (ex exactly n^2/4);
///   * l = 4  -> polarity graph restricted to n vertices;
///   * even l >= 6 -> greedy high-girth graph.
Graph dense_cl_free_graph(int n, int l, Rng& rng);

/// A *bipartite* C4-free graph on n vertices with Θ(n^{3/2}) edges
/// (Observation 20 instantiation): incidence graph of PG(2,q) restricted
/// to n vertices.
Graph bipartite_c4_free_graph(int n);

}  // namespace cclique
