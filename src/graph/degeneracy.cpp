#include "graph/degeneracy.h"

#include <algorithm>

namespace cclique {

DegeneracyResult compute_degeneracy(const Graph& g) {
  const int n = g.num_vertices();
  DegeneracyResult result;
  result.order.reserve(static_cast<std::size_t>(n));
  if (n == 0) return result;

  std::vector<int> deg(static_cast<std::size_t>(n));
  int max_deg = 0;
  for (int v = 0; v < n; ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    max_deg = std::max(max_deg, deg[static_cast<std::size_t>(v)]);
  }

  // Bucket queue keyed by current residual degree.
  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(max_deg) + 1);
  for (int v = 0; v < n; ++v) buckets[static_cast<std::size_t>(deg[static_cast<std::size_t>(v)])].push_back(v);
  std::vector<bool> removed(static_cast<std::size_t>(n), false);

  int cursor = 0;  // smallest possibly non-empty bucket
  for (int peeled = 0; peeled < n; ++peeled) {
    // The residual degree of a vertex only drops by 1 per removed neighbor,
    // so after taking a vertex from bucket d, the next minimum is >= d - 1.
    cursor = std::max(0, cursor - 1);
    int v = -1;
    while (v < 0) {
      auto& b = buckets[static_cast<std::size_t>(cursor)];
      while (!b.empty()) {
        int candidate = b.back();
        b.pop_back();
        // Lazy deletion: skip stale entries whose degree has changed.
        if (!removed[static_cast<std::size_t>(candidate)] &&
            deg[static_cast<std::size_t>(candidate)] == cursor) {
          v = candidate;
          break;
        }
      }
      if (v < 0) ++cursor;
    }
    removed[static_cast<std::size_t>(v)] = true;
    result.order.push_back(v);
    result.degeneracy = std::max(result.degeneracy, cursor);
    for (int u : g.neighbors(v)) {
      if (!removed[static_cast<std::size_t>(u)]) {
        int d = --deg[static_cast<std::size_t>(u)];
        buckets[static_cast<std::size_t>(d)].push_back(u);
      }
    }
  }
  return result;
}

bool is_elimination_order(const Graph& g, const std::vector<int>& order, int k) {
  const int n = g.num_vertices();
  if (static_cast<int>(order.size()) != n) return false;
  std::vector<int> position(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    int v = order[static_cast<std::size_t>(i)];
    if (v < 0 || v >= n || position[static_cast<std::size_t>(v)] != -1) return false;
    position[static_cast<std::size_t>(v)] = i;
  }
  for (int v = 0; v < n; ++v) {
    int later = 0;
    for (int u : g.neighbors(v)) {
      if (position[static_cast<std::size_t>(u)] > position[static_cast<std::size_t>(v)]) ++later;
    }
    if (later > k) return false;
  }
  return true;
}

}  // namespace cclique
