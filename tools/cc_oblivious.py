#!/usr/bin/env python3
"""Static data-obliviousness lint (run by the CI `oblivious-lint` job).

The congested-clique results this repo reproduces all hinge on schedules
being *data-oblivious*: round counts and message lengths are functions of
(n, element width w, bandwidth b) alone, never of payload values (matrix
entries, edge weights). The runtime guard (src/analysis/oblivious_guard.h)
enforces this dynamically on executed paths; this lint enforces it
statically, closing the dynamic guard's value-laundering gap (a payload
value copied out of a source before the sink opens). Five checks:

1. Plan reads payload: the body of a plan/pricing function (`*_plan`,
   `*_lengths`, `relay_cost`, `fill_plan_schedule`) calls a payload
   accessor (`.get(`, `.row(`, `.data()`) or indexes a `weights` array.
   The schedule would be a function of entry values.

2. Payload-sized message: inside an engine callback lambda (an argument of
   `.round(` / `.round_fill(` / `.send_phase(`), a `push_uint` width
   argument or an `append_slice` offset/length argument derives from a
   payload accessor — the emitted *length* leaks payload.

3. Branch on payload in a callback: an `if` condition inside an engine
   callback reads a payload accessor, so whether (or what) a player sends
   depends on values. Randomized or size-driven branches are fine; entry
   values are not.

4. Unchecked plan: a file binds a `*_plan(...)` result but never CC_CHECKs
   measured stats against it (same rule check_locality.py enforces — a
   plan that is never compared to measured rounds/bits is untested paper
   math, and here it is also an unenforced obliviousness claim).

5. Undeclared nnz dependence: a plan/pricing function (including the
   `*_profile` family) reads sparse *structure* (`.nnz(`, `.row_nnz(`,
   `.row_ptr(`, `.cols(`, `.vals(`) without a `declared_dependence`
   declaration in its body. Sparse schedules are legitimately functions
   of nnz — but only through the announced-profile choke point
   (core/sparse_mm.h), where the dependence is declared to the runtime
   guard; a plan that reads CSR structure silently is the sparse twin of
   check 1.

Front-ends: with libclang available (CI installs it), regions of interest
— plan-function bodies and engine-callback lambda bodies — are carved out
of the real AST over compile_commands.json; otherwise a token-level
front-end (the same brace-matching used by check_locality.py) finds them.
Both feed the identical check predicates, and --self-test proves whichever
front-end is active against the planted fixture. Select with
--backend=auto|libclang|tokens (default auto).

A finding can be suppressed with an `// oblivious-ok` comment on its line.
Scanner plumbing and the self-test harness are shared with
tools/check_locality.py via tools/lint_common.py.

Exit status 0 when clean, 1 with one line per finding otherwise.
Usage:
  python3 tools/cc_oblivious.py                 # scan src/
  python3 tools/cc_oblivious.py FILE...         # scan specific files
  python3 tools/cc_oblivious.py --self-test     # prove the planted fixture
                                                # violations are caught
  python3 tools/cc_oblivious.py --backend=tokens --compile-commands=build
"""
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common as lc

FIXTURE = os.path.join(lc.REPO, "tools", "fixtures", "oblivious_violation_example.cpp")

# Pricing-function definitions: the name families that compute schedules
# (`*_profile` covers the sparse nnz-declaration choke points).
PLAN_DEF_RE = re.compile(
    r"\b(?!run_)(\w+_plan|\w+_lengths|\w+_profile|relay_cost|fill_plan_schedule)\s*\("
)
# Payload accessors, as tagged for the runtime guard (linalg get/row/data,
# weight arrays). Message::size_bits and graph adjacency are deliberately
# NOT here: committed lengths and network topology are common knowledge.
PAYLOAD_READ_RE = re.compile(r"\.(?:get|row)\s*\(|\.data\s*\(\s*\)|\bweights\s*\[")
# Sparse structure accessors (linalg/sparse.h): tainted like payload, but
# plans may read them *through a declared dependence* (check 5).
NNZ_READ_RE = re.compile(r"\.(?:nnz|row_nnz|row_ptr|cols|vals)\s*\(")
CALLBACK_CALL_RE = re.compile(r"\.(?:round|round_fill|send_phase)\s*\(")
LAMBDA_RE = re.compile(r"\[&\]\s*\(\s*(?:const\s+)?int\s+(\w+)([^)]*)\)")
# Same executor exemption as check_locality.py: run_*_plan consumes a plan.
PLAN_CALL_RE = re.compile(r"(?:=|return)\s*(?!run_)\w+_plan\s*\(")
CC_CHECK_PLAN_RE = re.compile(r"CC_CHECK\s*\([^;]*plan", re.S)


def snippet(text):
    s = " ".join(text.split())
    return s if len(s) <= 48 else s[:45] + "..."


# --- front-ends ----------------------------------------------------------
#
# A front-end turns one file into regions of interest:
#   plan_defs: [(function name, body text, body offset in file)]
#   callbacks: [(body text, body offset in file)]
# The checks below are front-end agnostic.


class TokenFrontend:
    """Brace-matching front-end; self-contained, no dependencies."""

    name = "tokens"

    def regions(self, path, text):
        plan_defs = []
        for m in PLAN_DEF_RE.finditer(text):
            paren = m.end() - 1
            after = lc.match_brace(text, paren)
            # A definition follows its parameter list with an (optionally
            # qualified) `{`; declarations and calls do not.
            tail = re.match(r"[\s\w]*\{", text[after : after + 80])
            if tail is None:
                continue
            brace = after + tail.end() - 1
            plan_defs.append((m.group(1), text[brace : lc.match_brace(text, brace)], brace))
        callbacks = []
        for call in CALLBACK_CALL_RE.finditer(text):
            open_paren = call.end() - 1
            span_end = lc.match_brace(text, open_paren)
            span = text[open_paren:span_end]
            # Only the first lambda — the send/fill callback — is a length
            # sink; a trailing recv callback decodes already-committed
            # messages and may read freely (same rule as the runtime guard).
            for lam in LAMBDA_RE.finditer(span):
                brace = span.find("{", lam.end())
                if brace < 0:
                    continue
                body_end = lc.match_brace(span, brace)
                callbacks.append((span[brace:body_end], open_paren + brace))
                break
        return plan_defs, callbacks


class LibclangFrontend:
    """AST front-end over compile_commands.json. Falls back to the token
    front-end per file if a translation unit cannot be parsed."""

    name = "libclang"

    def __init__(self, compile_commands_dir):
        from clang import cindex  # raises ImportError without python3-clang

        self.cindex = cindex
        self.index = cindex.Index.create()  # raises if libclang.so missing
        self.fallback = TokenFrontend()
        self.cdb = None
        if compile_commands_dir and os.path.exists(
            os.path.join(compile_commands_dir, "compile_commands.json")
        ):
            self.cdb = cindex.CompilationDatabase.fromDirectory(compile_commands_dir)

    def _args_for(self, path):
        if self.cdb is not None:
            try:
                cmds = self.cdb.getCompileCommands(path)
            except self.cindex.CompilationDatabaseError:
                cmds = None
            if cmds:
                args = list(cmds[0].arguments)[1:]
                # Drop the compile/output bits; keep -I/-D/-std flags.
                keep, skip_next = [], False
                for a in args:
                    if skip_next:
                        skip_next = False
                        continue
                    if a == "-c" or a == path:
                        continue
                    if a == "-o":
                        skip_next = True
                        continue
                    keep.append(a)
                return keep
        # Headers and the fixture are not in the database: parse them
        # against the source root (parse errors are tolerated below).
        return ["-std=c++17", "-I", lc.SRC]

    def regions(self, path, text):
        try:
            tu = self.index.parse(path, args=self._args_for(path))
            plan_defs, callbacks = [], []
            self._walk(tu.cursor, path, text, plan_defs, callbacks)
            return plan_defs, callbacks
        except Exception:
            return self.fallback.regions(path, text)

    def _extent(self, cursor):
        return cursor.extent.start.offset, cursor.extent.end.offset

    def _walk(self, cursor, path, text, plan_defs, callbacks):
        ck = self.cindex.CursorKind
        for child in cursor.get_children():
            loc = child.location
            if loc.file is not None and os.path.abspath(loc.file.name) != path:
                continue
            if (
                child.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.FUNCTION_TEMPLATE)
                and child.is_definition()
                and PLAN_DEF_RE.match(child.spelling + "(")
            ):
                start, end = self._extent(child)
                brace = text.find("{", start, end)
                if brace >= 0:
                    plan_defs.append((child.spelling, text[brace:end], brace))
            if child.kind == ck.CALL_EXPR and child.spelling in (
                "round",
                "round_fill",
                "send_phase",
            ):
                lams = self._lambdas(child)
                if lams:
                    # First lambda in source order = the send/fill callback;
                    # recv callbacks are not sinks (see TokenFrontend).
                    lam = min(lams, key=lambda c: self._extent(c)[0])
                    start, end = self._extent(lam)
                    brace = text.find("{", start, end)
                    if brace >= 0:
                        callbacks.append((text[brace:end], brace))
            self._walk(child, path, text, plan_defs, callbacks)

    def _lambdas(self, cursor):
        out = []
        ck = self.cindex.CursorKind
        stack = list(cursor.get_children())
        while stack:
            c = stack.pop()
            if c.kind == ck.LAMBDA_EXPR:
                out.append(c)
            else:
                stack.extend(c.get_children())
        return out


def make_frontend(choice, compile_commands_dir):
    if choice in ("auto", "libclang"):
        try:
            fe = LibclangFrontend(compile_commands_dir)
            return fe
        except Exception as e:
            if choice == "libclang":
                print(f"oblivious: libclang front-end unavailable ({e})", file=sys.stderr)
                sys.exit(2)
    return TokenFrontend()


FRONTEND = TokenFrontend()


# --- the checks (front-end agnostic) -------------------------------------


def scan_file(path):
    problems = []
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    rel = os.path.relpath(path, lc.REPO)
    suppressed = lc.suppressed_lines(raw, "oblivious-ok")
    text = lc.strip_comments(raw)
    plan_defs, callbacks = FRONTEND.regions(os.path.abspath(path), text)

    def flag(offset, message):
        line = lc.line_of(text, offset)
        if line not in suppressed:
            problems.append(f"{rel}:{line}: {message}")

    for name, body, body_off in plan_defs:
        for m in PAYLOAD_READ_RE.finditer(body):
            flag(
                body_off + m.start(),
                f"plan function `{name}` reads payload storage "
                f"(`{snippet(body[m.start() : m.end() + 16])}`) — schedules "
                "must be functions of (n, w, b) alone (check 1)",
            )
        if "declared_dependence" not in body:
            for m in NNZ_READ_RE.finditer(body):
                flag(
                    body_off + m.start(),
                    f"plan function `{name}` reads sparse structure "
                    f"(`{snippet(body[m.start() : m.end() + 16])}`) without "
                    "declaring the dependence — nnz may shape a schedule "
                    "only through oblivious::declared_dependence (check 5)",
                )

    for body, body_off in callbacks:
        for m in re.finditer(r"\.(push_uint|append_slice)\s*\(", body):
            paren = m.end() - 1
            args = lc.split_top_level_args(body[paren + 1 : lc.match_brace(body, paren) - 1])
            # push_uint(value, width): the *width* is the emitted length.
            # append_slice(src, offset, len): offset and len size the slice.
            for arg in args[1:]:
                if PAYLOAD_READ_RE.search(arg):
                    flag(
                        body_off + m.start(),
                        f"`{m.group(1)}` length argument derives from a "
                        f"payload read (`{snippet(arg)}`) inside an engine "
                        "callback — the emitted length leaks payload "
                        "(check 2)",
                    )
        for m in re.finditer(r"\bif\s*\(", body):
            cond = body[m.end() : lc.match_brace(body, m.end() - 1) - 1]
            if PAYLOAD_READ_RE.search(cond):
                flag(
                    body_off + m.start(),
                    f"engine callback branches on a payload read "
                    f"(`{snippet(cond)}`) — what a player sends must not "
                    "depend on entry values (check 3)",
                )

    if PLAN_CALL_RE.search(text):
        # run_block_mm / run_sparse_mm are the plan-consuming executors;
        # their header templates carry the measured==plan CC_CHECKs.
        if (
            not CC_CHECK_PLAN_RE.search(text)
            and "run_block_mm" not in text
            and "run_sparse_mm" not in text
        ):
            problems.append(
                f"{rel}: binds a *_plan(...) result but never CC_CHECKs "
                "measured stats against the plan (check 4)"
            )
    # The AST front-end can surface one call expression through several
    # wrapper nodes; findings are keyed strings, so dedup is exact.
    return list(dict.fromkeys(problems))


def self_test():
    print(f"oblivious: front-end = {FRONTEND.name}")
    return lc.run_self_test(
        "oblivious",
        scan_file,
        FIXTURE,
        [
            ("check 1 (plan reads payload)", "(check 1)"),
            ("check 2 (payload-sized message)", "(check 2)"),
            ("check 3 (branch on payload in callback)", "(check 3)"),
            ("check 4 (unchecked plan)", "(check 4)"),
            ("check 5 (undeclared nnz dependence)", "(check 5)"),
        ],
    )


def main(argv):
    global FRONTEND
    backend = "auto"
    ccdir = os.path.join(lc.REPO, "build")
    for a in argv:
        if a.startswith("--backend="):
            backend = a.split("=", 1)[1]
        elif a.startswith("--compile-commands="):
            ccdir = os.path.abspath(a.split("=", 1)[1])
    if backend not in ("auto", "libclang", "tokens"):
        print(f"oblivious: unknown backend `{backend}`", file=sys.stderr)
        return 2
    FRONTEND = make_frontend(backend, ccdir)
    return lc.run_main("oblivious", argv, scan_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
