"""Shared infrastructure for the repo's static lints.

Both tools/check_locality.py (memory-model lint) and tools/cc_oblivious.py
(data-obliviousness lint) are fixture-driven scanners over C++ sources: they
strip comments, carve out regions of interest with a brace matcher, apply
check-specific predicates, and prove themselves against a planted-violation
fixture via --self-test. This module holds the scanner plumbing and the
shared self-test / CLI harness so the two lints cannot drift apart.

The self-test contract (run_self_test): the fixture must trigger every
registered check class, and the real tree under src/ must scan clean. A lint
whose fixture stops tripping a check fails its own CI job — the planted bugs
are the lint's regression tests.
"""
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

CAST_RE = re.compile(r"static_cast<[^<>]*>\s*\(([^()]*)\)")


def normalize(text):
    """Strips static_cast<...>(x) wrappers (repeatedly, for nesting)."""
    prev = None
    while prev != text:
        prev = text
        text = CAST_RE.sub(r"\1", text)
    return text


def strip_comments(text):
    """Blanks out // and /* */ comments, preserving newlines and offsets."""

    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    return re.sub(r"//[^\n]*", blank, text)


def match_brace(text, open_pos):
    """Index just past the brace/paren block opening at open_pos."""
    open_ch = text[open_pos]
    close_ch = {"{": "}", "(": ")", "[": "]"}[open_ch]
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def suppressed_lines(text, marker):
    """1-based lines carrying the lint's suppression comment marker."""
    return {i + 1 for i, line in enumerate(text.splitlines()) if marker in line}


def split_top_level_args(argtext):
    """Splits a call's argument text on commas outside nested ()/[]/{}."""
    parts, depth, cur = [], 0, []
    for ch in argtext:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur or parts:
        parts.append("".join(cur))
    return parts


def source_files(root, exts=(".cpp", ".h")):
    out = []
    for dirpath, _, filenames in os.walk(root):
        for fn in sorted(filenames):
            if fn.endswith(exts):
                out.append(os.path.join(dirpath, fn))
    return out


def run_self_test(name, scan_file, fixture, expected, src_root=SRC):
    """Proves the lint against its planted fixture, then scans src/ clean.

    `expected` is a list of (human label, finding needle) pairs; every
    needle must appear in at least one fixture finding. Prints the planted
    catch count on success (the CI summary table reports it).
    """
    problems = scan_file(fixture)
    for p in problems:
        print(f"{name}[self-test finding]: {p}")
    missing = [
        label for label, needle in expected if not any(needle in p for p in problems)
    ]
    if missing:
        for m in missing:
            print(
                f"{name}: self-test FAILED — fixture violation not caught: {m}",
                file=sys.stderr,
            )
        return 1
    clean = []
    for path in source_files(src_root):
        clean += scan_file(path)
    if clean:
        for p in clean:
            print(f"{name}: {p}", file=sys.stderr)
        print(f"{name}: self-test FAILED — src/ must scan clean", file=sys.stderr)
        return 1
    print(
        f"{name}: self-test passed — {len(problems)} planted finding(s) "
        "caught, src/ clean"
    )
    return 0


def run_main(name, argv, scan_file, self_test, src_root=SRC):
    """Standard lint CLI: no args scans src/, FILE... scans those files,
    --self-test runs the fixture proof. Unrecognized -flags are ignored so
    lints can layer their own options on top."""
    if "--self-test" in argv:
        return self_test()
    files = [os.path.abspath(a) for a in argv if not a.startswith("-")]
    if not files:
        files = source_files(src_root)
    problems = []
    for path in files:
        try:
            problems += scan_file(path)
        except OSError as e:
            problems.append(f"{path}: unreadable ({e.strerror})")
    for p in problems:
        print(f"{name}: {p}", file=sys.stderr)
    if problems:
        print(f"{name}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"{name}: {len(files)} file(s) clean")
    return 0
