#!/usr/bin/env python3
"""Static locality lint (run by the CI `locality-lint` job).

The runtime locality guard (src/analysis/locality_guard.h) enforces the
simulated-clique memory model dynamically; this script enforces the same
rules statically, so a violation is caught even on paths no test executes.
Three checks, all heuristic but tuned to this codebase's idiom:

1. Tagged cross-player access: inside an engine callback lambda (an
   argument of `.round(` / `.round_fill(` / `.send_phase(`), any index of a
   `locality::PerPlayer` variable must be exactly the callback's player
   parameter, or sit inside a branch guarded by `if (index == player)`.
   Anything else is the PR-4 splitter bug shape: a callback reaching into
   another player's registered state.

2. Reference-captured cross-player write: inside a callback body, a write
   (`=`, `+=`, `.push_back`, `.append`, `.push_uint`) through a
   reference-captured array at a non-self player index mutates engine-wide
   state from a (possibly concurrent) player callback — the PR-2 shared-RNG
   bug shape. Bodies that open with the common-knowledge idiom
   `if (player != 0) return;` ("identical decode everywhere; model once")
   are orchestrator-style decoders and exempt from this check (but not from
   check 1 — tagged state stays guarded even there).

3. Unchecked plan: a file that binds the result of a `*_plan(...)` call
   must CC_CHECK measured stats against the plan (text `plan` inside some
   CC_CHECK) or delegate to the shared checked driver (`run_block_mm`).
   A data-independent schedule that is never compared to the measured
   rounds/bits is untested paper math.

A finding can be suppressed with a `// locality-ok` comment on its line.
Scanner plumbing and the self-test harness are shared with
tools/cc_oblivious.py via tools/lint_common.py.

Exit status 0 when clean, 1 with one line per finding otherwise.
Usage:
  python3 tools/check_locality.py              # scan src/
  python3 tools/check_locality.py FILE...      # scan specific files
  python3 tools/check_locality.py --self-test  # prove the planted fixture
                                               # violations are caught
"""
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common as lc

FIXTURE = os.path.join(lc.REPO, "tools", "fixtures", "locality_violation_example.cpp")

TAGGED_RE = re.compile(r"locality::PerPlayer<[\w:<>,\s]*>\s+(\w+)\s*\(")
CALLBACK_CALL_RE = re.compile(r"\.(?:round|round_fill|send_phase)\s*\(")
LAMBDA_RE = re.compile(r"\[&\]\s*\(\s*(?:const\s+)?int\s+(\w+)([^)]*)\)")
ACCESS_RE = re.compile(r"\b(\w+)\[([^\][]+)\]")
WRITE_TAIL_RE = re.compile(r"\s*(?:=[^=]|\+=|-=|\.push_back|\.append|\.push_uint)")
MODEL_ONCE_RE = r"if\s*\(\s*{p}\s*!=\s*0\s*\)\s*return\s*;"
# `run_*_plan(...)` names are executors (they *consume* a plan), not
# planners; only pure `*_plan(...)` computations need a CC_CHECK.
PLAN_CALL_RE = re.compile(r"(?:=|return)\s*(?!run_)\w+_plan\s*\(")
CC_CHECK_PLAN_RE = re.compile(r"CC_CHECK\s*\([^;]*plan", re.S)


def callback_bodies(text):
    """Yields (param, all_params, body, body_offset) for engine-callback
    lambdas: every `[&](int p, ...)` lambda inside the argument span of an
    engine round call. `all_params` includes the out/inbox parameters so
    accesses through them are never treated as captures."""
    for call in CALLBACK_CALL_RE.finditer(text):
        open_paren = call.end() - 1
        span_end = lc.match_brace(text, open_paren)
        span = text[open_paren:span_end]
        for lam in LAMBDA_RE.finditer(span):
            params = {lam.group(1)}
            params.update(re.findall(r"(\w+)\s*(?:,|$)", lam.group(2)))
            brace = span.find("{", lam.end())
            if brace < 0:
                continue
            body_end = lc.match_brace(span, brace)
            yield lam.group(1), params, span[brace:body_end], open_paren + brace


def enclosing_if_conditions(body, pos):
    """Conditions of the if-blocks whose braces enclose `pos` in `body`."""
    conditions = []
    for m in re.finditer(r"\bif\s*\(", body):
        cond_end = lc.match_brace(body, m.end() - 1)
        brace = cond_end
        while brace < len(body) and body[brace] in " \t\n":
            brace += 1
        if brace >= len(body) or body[brace] != "{":
            continue
        block_end = lc.match_brace(body, brace)
        if brace < pos < block_end:
            conditions.append(body[m.end() : cond_end - 1])
    return conditions


def self_guarded(body, pos, param, index_expr):
    idx = index_expr.strip()
    if not re.fullmatch(r"\w+", idx):
        return False
    pat = re.compile(
        r"\b{i}\s*==\s*{p}\b|\b{p}\s*==\s*{i}\b".format(
            i=re.escape(idx), p=re.escape(param)
        )
    )
    return any(pat.search(c) for c in enclosing_if_conditions(body, pos))


def declared_in(body, name):
    """True if `name` is declared inside the lambda body (a local)."""
    return (
        re.search(
            r"[\w>&*]\s+\*?&?{n}\s*[=;({{\[]".format(n=re.escape(name)), body
        )
        is not None
    )


def scan_file(path):
    problems = []
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    rel = os.path.relpath(path, lc.REPO)
    suppressed = lc.suppressed_lines(raw, "locality-ok")
    text = lc.normalize(lc.strip_comments(raw))
    tagged = set(TAGGED_RE.findall(text))

    for param, params, body, body_off in callback_bodies(text):
        model_once = re.search(MODEL_ONCE_RE.format(p=re.escape(param)), body)
        for acc in ACCESS_RE.finditer(body):
            name, idx = acc.group(1), acc.group(2).strip()
            line = lc.line_of(text, body_off + acc.start())
            if line in suppressed:
                continue
            if idx == param:
                continue
            if self_guarded(body, acc.start(), param, idx):
                continue
            if name in tagged:
                problems.append(
                    f"{rel}:{line}: callback for player `{param}` indexes "
                    f"tagged per-player state `{name}` with `{idx}` — "
                    "cross-player access (check 1)"
                )
                continue
            # Untagged: only writes through reference-captured arrays count,
            # and model-once decoder bodies are exempt.
            if model_once:
                continue
            if not WRITE_TAIL_RE.match(body[acc.end() :]):
                continue
            if name in params or declared_in(body, name):
                continue
            problems.append(
                f"{rel}:{line}: callback for player `{param}` writes "
                f"reference-captured array `{name}` at non-self index "
                f"`{idx}` (check 2)"
            )

    if PLAN_CALL_RE.search(text):
        # run_block_mm / run_sparse_mm are the plan-consuming executors;
        # their header templates carry the measured==plan CC_CHECKs.
        if (
            not CC_CHECK_PLAN_RE.search(text)
            and "run_block_mm" not in text
            and "run_sparse_mm" not in text
        ):
            problems.append(
                f"{rel}: binds a *_plan(...) result but never CC_CHECKs "
                "measured stats against the plan (check 3)"
            )
    return problems


def self_test():
    return lc.run_self_test(
        "locality",
        scan_file,
        FIXTURE,
        [
            ("check 1 (tagged cross-player access)", "(check 1)"),
            ("check 2 (reference-captured write)", "(check 2)"),
            ("check 3 (unchecked plan)", "(check 3)"),
        ],
    )


def main(argv):
    return lc.run_main("locality", argv, scan_file, self_test)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
