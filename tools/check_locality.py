#!/usr/bin/env python3
"""Static locality lint (run by the CI `locality-lint` job).

The runtime locality guard (src/analysis/locality_guard.h) enforces the
simulated-clique memory model dynamically; this script enforces the same
rules statically, so a violation is caught even on paths no test executes.
Three checks, all heuristic but tuned to this codebase's idiom:

1. Tagged cross-player access: inside an engine callback lambda (an
   argument of `.round(` / `.round_fill(` / `.send_phase(`), any index of a
   `locality::PerPlayer` variable must be exactly the callback's player
   parameter, or sit inside a branch guarded by `if (index == player)`.
   Anything else is the PR-4 splitter bug shape: a callback reaching into
   another player's registered state.

2. Reference-captured cross-player write: inside a callback body, a write
   (`=`, `+=`, `.push_back`, `.append`, `.push_uint`) through a
   reference-captured array at a non-self player index mutates engine-wide
   state from a (possibly concurrent) player callback — the PR-2 shared-RNG
   bug shape. Bodies that open with the common-knowledge idiom
   `if (player != 0) return;` ("identical decode everywhere; model once")
   are orchestrator-style decoders and exempt from this check (but not from
   check 1 — tagged state stays guarded even there).

3. Unchecked plan: a file that binds the result of a `*_plan(...)` call
   must CC_CHECK measured stats against the plan (text `plan` inside some
   CC_CHECK) or delegate to the shared checked driver (`run_block_mm`).
   A data-independent schedule that is never compared to the measured
   rounds/bits is untested paper math.

A finding can be suppressed with a `// locality-ok` comment on its line.

Exit status 0 when clean, 1 with one line per finding otherwise.
Usage:
  python3 tools/check_locality.py              # scan src/
  python3 tools/check_locality.py FILE...      # scan specific files
  python3 tools/check_locality.py --self-test  # prove the planted fixture
                                               # violations are caught
"""
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
FIXTURE = os.path.join(REPO, "tools", "fixtures", "locality_violation_example.cpp")

CAST_RE = re.compile(r"static_cast<[^<>]*>\s*\(([^()]*)\)")
TAGGED_RE = re.compile(r"locality::PerPlayer<[\w:<>,\s]*>\s+(\w+)\s*\(")
CALLBACK_CALL_RE = re.compile(r"\.(?:round|round_fill|send_phase)\s*\(")
LAMBDA_RE = re.compile(r"\[&\]\s*\(\s*(?:const\s+)?int\s+(\w+)([^)]*)\)")
ACCESS_RE = re.compile(r"\b(\w+)\[([^\][]+)\]")
WRITE_TAIL_RE = re.compile(r"\s*(?:=[^=]|\+=|-=|\.push_back|\.append|\.push_uint)")
MODEL_ONCE_RE = r"if\s*\(\s*{p}\s*!=\s*0\s*\)\s*return\s*;"
# `run_*_plan(...)` names are executors (they *consume* a plan), not
# planners; only pure `*_plan(...)` computations need a CC_CHECK.
PLAN_CALL_RE = re.compile(r"(?:=|return)\s*(?!run_)\w+_plan\s*\(")
CC_CHECK_PLAN_RE = re.compile(r"CC_CHECK\s*\([^;]*plan", re.S)


def normalize(text):
    """Strips static_cast<...>(x) wrappers (repeatedly, for nesting)."""
    prev = None
    while prev != text:
        prev = text
        text = CAST_RE.sub(r"\1", text)
    return text


def suppressed_lines(text):
    return {
        i + 1 for i, line in enumerate(text.splitlines()) if "locality-ok" in line
    }


def strip_comments(text):
    """Blanks out // and /* */ comments, preserving newlines and offsets."""

    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    return re.sub(r"//[^\n]*", blank, text)


def match_brace(text, open_pos):
    """Index just past the brace/paren block opening at open_pos."""
    open_ch = text[open_pos]
    close_ch = {"{": "}", "(": ")"}[open_ch]
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def callback_bodies(text):
    """Yields (param, all_params, body, body_offset) for engine-callback
    lambdas: every `[&](int p, ...)` lambda inside the argument span of an
    engine round call. `all_params` includes the out/inbox parameters so
    accesses through them are never treated as captures."""
    for call in CALLBACK_CALL_RE.finditer(text):
        open_paren = call.end() - 1
        span_end = match_brace(text, open_paren)
        span = text[open_paren:span_end]
        for lam in LAMBDA_RE.finditer(span):
            params = {lam.group(1)}
            params.update(re.findall(r"(\w+)\s*(?:,|$)", lam.group(2)))
            brace = span.find("{", lam.end())
            if brace < 0:
                continue
            body_end = match_brace(span, brace)
            yield lam.group(1), params, span[brace:body_end], open_paren + brace


def enclosing_if_conditions(body, pos):
    """Conditions of the if-blocks whose braces enclose `pos` in `body`."""
    conditions = []
    for m in re.finditer(r"\bif\s*\(", body):
        cond_end = match_brace(body, m.end() - 1)
        brace = cond_end
        while brace < len(body) and body[brace] in " \t\n":
            brace += 1
        if brace >= len(body) or body[brace] != "{":
            continue
        block_end = match_brace(body, brace)
        if brace < pos < block_end:
            conditions.append(body[m.end() : cond_end - 1])
    return conditions


def self_guarded(body, pos, param, index_expr):
    idx = index_expr.strip()
    if not re.fullmatch(r"\w+", idx):
        return False
    pat = re.compile(
        r"\b{i}\s*==\s*{p}\b|\b{p}\s*==\s*{i}\b".format(
            i=re.escape(idx), p=re.escape(param)
        )
    )
    return any(pat.search(c) for c in enclosing_if_conditions(body, pos))


def declared_in(body, name):
    """True if `name` is declared inside the lambda body (a local)."""
    return (
        re.search(
            r"[\w>&*]\s+\*?&?{n}\s*[=;({{\[]".format(n=re.escape(name)), body
        )
        is not None
    )


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def scan_file(path):
    problems = []
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    rel = os.path.relpath(path, REPO)
    suppressed = suppressed_lines(raw)
    text = normalize(strip_comments(raw))
    tagged = set(TAGGED_RE.findall(text))

    for param, params, body, body_off in callback_bodies(text):
        model_once = re.search(MODEL_ONCE_RE.format(p=re.escape(param)), body)
        for acc in ACCESS_RE.finditer(body):
            name, idx = acc.group(1), acc.group(2).strip()
            line = line_of(text, body_off + acc.start())
            if line in suppressed:
                continue
            if idx == param:
                continue
            if self_guarded(body, acc.start(), param, idx):
                continue
            if name in tagged:
                problems.append(
                    f"{rel}:{line}: callback for player `{param}` indexes "
                    f"tagged per-player state `{name}` with `{idx}` — "
                    "cross-player access (check 1)"
                )
                continue
            # Untagged: only writes through reference-captured arrays count,
            # and model-once decoder bodies are exempt.
            if model_once:
                continue
            if not WRITE_TAIL_RE.match(body[acc.end() :]):
                continue
            if name in params or declared_in(body, name):
                continue
            problems.append(
                f"{rel}:{line}: callback for player `{param}` writes "
                f"reference-captured array `{name}` at non-self index "
                f"`{idx}` (check 2)"
            )

    if PLAN_CALL_RE.search(text):
        if not CC_CHECK_PLAN_RE.search(text) and "run_block_mm" not in text:
            problems.append(
                f"{rel}: binds a *_plan(...) result but never CC_CHECKs "
                "measured stats against the plan (check 3)"
            )
    return problems


def source_files(root):
    out = []
    for dirpath, _, filenames in os.walk(root):
        for fn in sorted(filenames):
            if fn.endswith((".cpp", ".h")):
                out.append(os.path.join(dirpath, fn))
    return out


def self_test():
    problems = scan_file(FIXTURE)
    for p in problems:
        print(f"locality[self-test finding]: {p}")
    missing = [
        label
        for label, needle in [
            ("check 1 (tagged cross-player access)", "(check 1)"),
            ("check 2 (reference-captured write)", "(check 2)"),
            ("check 3 (unchecked plan)", "(check 3)"),
        ]
        if not any(needle in p for p in problems)
    ]
    if missing:
        for m in missing:
            print(
                f"locality: self-test FAILED — fixture violation not caught: {m}",
                file=sys.stderr,
            )
        return 1
    clean = []
    for path in source_files(SRC):
        clean += scan_file(path)
    if clean:
        for p in clean:
            print(f"locality: {p}", file=sys.stderr)
        print("locality: self-test FAILED — src/ must scan clean", file=sys.stderr)
        return 1
    print(
        f"locality: self-test passed — {len(problems)} planted finding(s) "
        "caught, src/ clean"
    )
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    files = [os.path.abspath(a) for a in argv if not a.startswith("-")]
    if not files:
        files = source_files(SRC)
    problems = []
    for path in files:
        try:
            problems += scan_file(path)
        except OSError as e:
            problems.append(f"{path}: unreadable ({e.strerror})")
    for p in problems:
        print(f"locality: {p}", file=sys.stderr)
    if problems:
        print(f"locality: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"locality: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
