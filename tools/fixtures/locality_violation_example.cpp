// Planted locality violations for `tools/check_locality.py --self-test`.
//
// This file is NOT compiled or linked anywhere — it lives outside src/ (the
// lint's default scan root) purely so the self-test can prove the scanner
// still catches each violation class. Keep one planted instance of every
// check; the self-test fails if any class stops being detected.
//
// The runtime twin of the check-1 plant below is
// tests/locality_guard_test.cpp (UnicastSendCallbackCannotReadAnotherPlayersState),
// which drives the same cross-player read through a real engine and asserts
// ModelViolation — one seeded bug, caught both statically and dynamically.
#include <cstdint>
#include <vector>

#include "analysis/locality_guard.h"
#include "comm/clique_unicast.h"

namespace cclique {

struct FixturePlan {
  int rounds = 0;
};

FixturePlan fixture_plan(int n) { return FixturePlan{n > 1 ? 2 : 1}; }

void planted_violations(CliqueUnicast& net, int n) {
  locality::PerPlayer<std::uint64_t> secret(
      n, CC_LOCALITY_SITE("planted secret"));
  std::vector<std::uint64_t> shared(static_cast<std::size_t>(n), 0);

  // check 3: a plan is computed but no CC_CHECK compares measured stats
  // against it anywhere in this file.
  const FixturePlan plan = fixture_plan(n);
  (void)plan;

  net.round(
      [&](int i) {
        std::vector<Message> box(static_cast<std::size_t>(n));
        // check 1: player i reads player (i+1)%n's tagged private state.
        const std::uint64_t stolen = secret[(i + 1) % n];
        // check 2: player i writes a reference-captured engine-wide array
        // at a non-self index (a data race under CC_THREADS > 1).
        shared[0] += stolen;
        Message m;
        m.push_uint(stolen, 5);
        box[0] = m;  // writing the local outbox is fine — not flagged
        return box;
      },
      [](int, const std::vector<Message>&) {});
}

}  // namespace cclique
