// Planted obliviousness violations for `tools/cc_oblivious.py --self-test`.
//
// This file is NOT compiled or linked anywhere — it lives outside src/ (the
// lint's default scan root) purely so the self-test can prove the scanner
// still catches each violation class. Keep one planted instance of every
// check; the self-test fails if any class stops being detected.
//
// The runtime twins of the plants below are in
// tests/oblivious_guard_test.cpp: the check-2 shape is
// UnicastSendCallbackCannotSizeMessagesFromPayload / BroadcastCallbackIsASink
// (payload-derived emitted length through a real engine) and the check-3
// shape is UnicastFillCallbackIsASinkToo (branching on an entry inside a
// fill callback) — each seeded bug is caught both statically and
// dynamically.
#include <cstdint>
#include <vector>

#include "analysis/oblivious_guard.h"
#include "comm/clique_unicast.h"
#include "linalg/mat61.h"
#include "linalg/sparse.h"

namespace cclique {

struct ObliviousFixturePlan {
  int rounds = 0;
  std::uint64_t bits = 0;
};

// check 1: a plan function reads matrix payload storage, so the priced
// schedule becomes a function of entry values instead of (n, w, b).
ObliviousFixturePlan fixture_mm_plan(const Mat61& a, int bandwidth) {
  ObliviousFixturePlan plan;
  plan.bits = a.get(0, 0) * static_cast<std::uint64_t>(bandwidth);
  plan.rounds = static_cast<int>(plan.bits) / bandwidth;
  return plan;
}

// check 5: a pricing function shapes its schedule from CSR structure
// (nnz) without declaring the dependence — the legitimate route is the
// declared_nnz_profile choke point (core/sparse_mm.h), whose body holds an
// oblivious::declared_dependence declaration; silently read, the nnz
// dependence bypasses both the runtime guard's accounting and the
// announcement that makes it common knowledge.
ObliviousFixturePlan fixture_sparse_profile(const Csr61& a, int bandwidth) {
  ObliviousFixturePlan plan;
  plan.bits = static_cast<std::uint64_t>(a.nnz()) * 61;
  plan.rounds = static_cast<int>(plan.bits) / bandwidth;
  return plan;
}

void planted_oblivious_violations(CliqueUnicast& net, const Mat61& payload) {
  // check 4: the plan result is bound but no CC_CHECK ever compares the
  // measured rounds/bits against it anywhere in this file.
  const ObliviousFixturePlan plan = fixture_mm_plan(payload, net.bandwidth());
  (void)plan;

  net.round_fill(
      [&](int i, Message* box) {
        // check 3: whether player i sends at all branches on a payload
        // entry — the round's traffic pattern leaks the value.
        if (payload.get(i, 0) > 7) {
          // check 2: the emitted width is derived from a payload entry —
          // the message *length* leaks the value even if the bits do not.
          box[0].push_uint(0, static_cast<int>(payload.get(i, 1) % 61));
        }
      },
      [](int, const std::vector<Message>&) {});
}

}  // namespace cclique
