#!/usr/bin/env python3
"""Docs-drift and markdown link checks (run by the CI `docs` job).

Three checks, all offline:

1. Bench-table drift: every `bench_e*` target registered in
   bench/CMakeLists.txt (the CCLIQUE_BENCHES list) must be mentioned in
   README.md — the "The 18 experiments" table is the canonical user-facing
   index of the harnesses, and a bench that ships without a row there is
   undocumented. The converse holds too: a bench named in the README that
   no longer builds is a stale doc.

2. Markdown links: every `[text](target)` in the top-level docs whose
   target is a relative path must point at an existing file (anchors are
   stripped; http(s)/mailto links are skipped — no network in CI).

3. Env-knob drift: every `CC_*` environment variable read via getenv in
   src/ or bench/ (the runtime knobs: CC_THREADS, CC_KERNEL, ...) must be
   named in README.md — a knob that ships undocumented is invisible to
   users and to the CI matrix.

Exit status 0 when clean, 1 with one line per finding otherwise.
Usage: python3 tools/check_docs.py  (from anywhere inside the repo)
"""
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINK_CHECKED_DOCS = ["README.md", "DESIGN.md", "ROADMAP.md"]
BENCH_TABLE_DOC = "README.md"


def bench_targets():
    """The bench_e* executables registered with the build."""
    path = os.path.join(REPO, "bench", "CMakeLists.txt")
    with open(path, encoding="utf-8") as f:
        text = f.read()
    block = re.search(r"set\(CCLIQUE_BENCHES(.*?)\)", text, re.S)
    if block is None:
        return ["<error: CCLIQUE_BENCHES list not found in bench/CMakeLists.txt>"]
    return re.findall(r"\bbench_e\w+", block.group(1))


def check_bench_table():
    problems = []
    targets = bench_targets()
    readme_path = os.path.join(REPO, BENCH_TABLE_DOC)
    with open(readme_path, encoding="utf-8") as f:
        readme = f.read()
    # A mention only counts if it is a markdown table row (a line starting
    # with '|') — prose references elsewhere must not satisfy the index.
    table_rows = [line for line in readme.splitlines() if line.lstrip().startswith("|")]
    for target in targets:
        if not any(target in row for row in table_rows):
            problems.append(
                f"{BENCH_TABLE_DOC}: bench target `{target}` is built but has no "
                "row in the bench table — add one (see 'The 18 experiments')"
            )
    # Converse: benches the README names that the build no longer has.
    # Short prose references ("bench_e18") count as long as they prefix a
    # registered target ("bench_e18_apsp").
    for named in sorted(set(re.findall(r"\bbench_e\w+", readme))):
        if not any(t == named or t.startswith(named + "_") for t in targets):
            problems.append(
                f"{BENCH_TABLE_DOC}: names `{named}`, which is not a registered "
                "bench target — stale row?"
            )
    return problems


LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_links():
    problems = []
    for doc in LINK_CHECKED_DOCS:
        doc_path = os.path.join(REPO, doc)
        if not os.path.exists(doc_path):
            problems.append(f"{doc}: file missing (link check target list is stale)")
            continue
        with open(doc_path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(doc_path), path))
            if not os.path.exists(resolved):
                problems.append(f"{doc}: broken link -> {target}")
    return problems


GETENV_RE = re.compile(r'getenv\(\s*"(CC_[A-Z0-9_]+)"\s*\)')


def check_env_knobs():
    problems = []
    knobs = set()
    for top in ("src", "bench"):
        for dirpath, _dirnames, filenames in os.walk(os.path.join(REPO, top)):
            for name in filenames:
                if not name.endswith((".cpp", ".h")):
                    continue
                with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                    knobs.update(GETENV_RE.findall(f.read()))
    with open(os.path.join(REPO, "README.md"), encoding="utf-8") as f:
        readme = f.read()
    for knob in sorted(knobs):
        if knob not in readme:
            problems.append(
                f"README.md: env knob `{knob}` is read by the code but never "
                "documented — add it beside the CC_THREADS/CC_KERNEL docs"
            )
    return problems


def main():
    problems = check_bench_table() + check_links() + check_env_knobs()
    for p in problems:
        print(f"docs-drift: {p}", file=sys.stderr)
    if problems:
        print(f"docs-drift: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs-drift: bench table, markdown links, and env knobs are clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
