// Section 2.1 end to end: triangle detection through matrix-multiplication
// circuits compiled onto the unicast clique (Theorem 2 + Shamir + Strassen).
//
// Shows the whole pipeline: graph -> adjacency inputs (player i holds row
// i) -> randomized triangle-witness circuit -> Theorem 2 compilation ->
// measured rounds, next to the deterministic DLP baseline on the same
// engine parameters.
//
//   ./matrix_triangle [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "comm/clique_unicast.h"
#include "core/dlp_triangle.h"
#include "core/mm_triangle.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cclique;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  Rng rng(seed);

  Graph g = gnp(n, 3.0 / n, rng);
  plant_subgraph(g, complete_graph(3), rng);
  std::printf("graph: n=%d m=%zu triangles=%llu\n", n, g.num_edges(),
              static_cast<unsigned long long>(count_triangles(g)));

  {
    CliqueUnicast net(n, 64);
    auto r = mm_triangle_detect(net, g, /*reps=*/6, rng, /*use_strassen=*/true);
    std::printf("MM (Strassen): detected=%-3s rounds=%-5d wires=%-9zu depth=%d "
                "bandwidth=%d\n",
                r.detected ? "yes" : "no", r.stats.rounds, r.circuit_wires,
                r.circuit_depth, r.recommended_bandwidth);
  }
  {
    CliqueUnicast net(n, 64);
    auto r = mm_triangle_detect(net, g, /*reps=*/6, rng, /*use_strassen=*/false);
    std::printf("MM (naive)   : detected=%-3s rounds=%-5d wires=%-9zu depth=%d\n",
                r.detected ? "yes" : "no", r.stats.rounds, r.circuit_wires,
                r.circuit_depth);
  }
  {
    CliqueUnicast net(n, 64);
    auto r = mm_triangle_run(net, g, /*reps=*/1, rng, TriangleBackend::kAlgebraic);
    std::printf("MM (algebraic protocol): detected=%-3s rounds=%-5d exact count=%llu "
                "(O(n^{1/3}) rounds, DESIGN.md §2.2)\n",
                r.detected ? "yes" : "no", r.stats.rounds,
                static_cast<unsigned long long>(r.triangle_count));
  }
  {
    CliqueUnicast net(n, 64);
    auto r = dlp_triangle_detect(net, g);
    std::printf("DLP baseline : detected=%-3s rounds=%-5d\n",
                r.detected ? "yes" : "no", r.stats.rounds);
  }
  std::printf("\nwith O(n^{2+eps})-wire MM circuits (conjectured), the MM rows "
              "above would run in O(n^eps) rounds at b=1  (§2.1)\n");
  return 0;
}
