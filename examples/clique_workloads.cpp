// Classical congested-clique workloads on the simulator: MST and sorting.
//
// These are the problems that motivated the model ([30], [32], [28] in the
// paper's related work); the example runs both on the same engine and
// prints the exact communication accounting, demonstrating the public API
// for writing new protocols.
//
//   ./clique_workloads [n] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "comm/clique_unicast.h"
#include "core/mst.h"
#include "core/sorting.h"
#include "graph/generators.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cclique;
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;
  Rng rng(seed);

  {
    Graph g = gnp(n, 0.4, rng);
    std::vector<std::uint32_t> w(g.edges().size());
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 16));
    auto ref = kruskal_reference(g, w);
    std::uint64_t ref_weight = 0;
    for (const auto& e : ref) ref_weight += e.weight;
    for (MstAlgorithm algo : {MstAlgorithm::kBoruvka, MstAlgorithm::kLotker}) {
      CliqueUnicast net(n, 64);
      auto r = clique_mst(net, g, w, algo);
      std::printf("MST  : n=%d m=%zu [%s] -> %zu tree edges, weight=%llu "
                  "(reference %llu, %s), %d phases, %d rounds, %llu bits\n",
                  n, g.num_edges(),
                  algo == MstAlgorithm::kBoruvka ? "boruvka" : "lotker",
                  r.tree.size(),
                  static_cast<unsigned long long>(r.total_weight),
                  static_cast<unsigned long long>(ref_weight),
                  r.total_weight == ref_weight ? "match" : "MISMATCH", r.phases,
                  r.stats.rounds,
                  static_cast<unsigned long long>(r.stats.total_bits));
    }
  }
  {
    std::vector<std::vector<std::uint32_t>> inputs(static_cast<std::size_t>(n));
    std::vector<std::uint32_t> all;
    for (auto& block : inputs) {
      block.resize(static_cast<std::size_t>(n));
      for (auto& x : block) {
        x = static_cast<std::uint32_t>(rng.uniform(1u << 30));
        all.push_back(x);
      }
    }
    CliqueUnicast net(n, 64);
    auto r = clique_sort(net, inputs);
    std::sort(all.begin(), all.end());
    std::vector<std::uint32_t> got;
    for (const auto& blk : r.blocks) {
      for (auto x : blk) got.push_back(x);
    }
    std::printf("SORT : %d players x %d keys -> %s, %d rounds, %llu bits\n", n,
                n, got == all ? "globally sorted" : "SORT FAILED",
                r.stats.rounds,
                static_cast<unsigned long long>(r.stats.total_bits));
  }
  return 0;
}
