// Exact all-pairs shortest paths on the unicast clique: the min-plus
// semiring workload (DESIGN.md §2.4) end to end.
//
// Shows the whole pipeline: weighted graph -> one-step distance matrix
// (player i holds row i) -> ⌈log2(n-1)⌉ distributed distance-product
// squarings over the tropical semiring -> exact distances, eccentricities,
// diameter and radius, with the measured rounds/bits checked against the
// data-independent apsp_plan schedule, next to per-source Dijkstra as
// ground truth.
//
//   ./apsp_distances [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "comm/clique_unicast.h"
#include "core/apsp.h"
#include "graph/generators.h"
#include "linalg/tropical.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cclique;
  const int n = argc > 1 ? std::atoi(argv[1]) : 27;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
  Rng rng(seed);

  // A connected weighted workload: a random tree plus random extra edges.
  Graph g = random_tree(n, rng);
  for (int extra = 0; extra < n / 2; ++extra) {
    const int u = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (u != v) g.add_edge(u, v);
  }
  std::vector<std::uint32_t> w(g.num_edges());
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.uniform(1 << 10));
  std::printf("graph: n=%d m=%zu (random tree + chords, weights < 1024)\n", n,
              g.num_edges());

  CliqueUnicast net(n, 64);
  const ApspResult r = apsp_run(net, g, w);
  const bool ok = r.dist == apsp_dijkstra_reference(g, w);
  std::printf("APSP : %d squarings of the distance matrix, %d rounds, %llu bits\n"
              "       (plan: %d rounds — measured==plan is CC_CHECKed per run)\n",
              r.plan.squarings, r.total_rounds,
              static_cast<unsigned long long>(r.total_bits),
              r.plan.total_rounds);
  std::printf("check: distances %s per-source Dijkstra\n",
              ok ? "match" : "MISMATCH vs");
  if (r.diameter == kTropicalInf) {
    std::printf("graph is disconnected: diameter = radius = +inf\n");
  } else {
    std::printf("diameter=%llu radius=%llu ecc(0)=%llu\n",
                static_cast<unsigned long long>(r.diameter),
                static_cast<unsigned long long>(r.radius),
                static_cast<unsigned long long>(r.eccentricity[0]));
  }
  std::printf("\none distance product costs the same 6·n^{1/3} schedule as the\n"
              "F_{2^61-1} product of E17 (61-bit words, all-ones = +inf); APSP\n"
              "is O(n^{1/3} log n) rounds total (§2.4, bench_e18)\n");
  return ok ? 0 : 1;
}
