// Theorem 24 end to end: 3-party number-on-forehead set disjointness solved
// by simulating broadcast-clique triangle detection on a Ruzsa–Szemerédi
// graph.
//
// Prints the RS-graph statistics (Claim 23), runs the reduction on random
// instances, and reports the blackboard communication next to the
// disjointness universe size m — the ratio Corollary 25 turns into the
// deterministic Ω(n / (e^{O(sqrt(log n))} b)) triangle bound.
//
//   ./nof_triangle [m] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/turan_detect.h"
#include "graph/generators.h"
#include "lowerbound/nof_reduction.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cclique;
  const int m_param = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
  Rng rng(seed);

  const RuzsaSzemerediGraph rs = ruzsa_szemeredi_graph(m_param);
  std::printf("RS graph: n=%d vertices, %zu edges, %zu edge-disjoint "
              "triangles (m^2 density ratio %.3f)\n",
              rs.graph.num_vertices(), rs.graph.num_edges(),
              rs.triangles.size(),
              static_cast<double>(rs.triangles.size()) /
                  (static_cast<double>(m_param) * m_param));

  BroadcastTriangleDetector detector = [](CliqueBroadcast& net, const Graph& g) {
    return full_broadcast_detect(net, g, complete_graph(3)).contains_h;
  };

  const int bandwidth = 8;
  const std::size_t m = rs.triangles.size();
  int correct = 0;
  std::uint64_t bits = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    NofDisjointnessInstance inst = (t % 2 == 0)
                                       ? random_nof_disjoint(m, 0.5, rng)
                                       : random_nof_intersecting(m, 0.5, rng);
    auto out = solve_nof_disjointness_via_triangles(rs, inst, bandwidth, detector);
    correct += out.correct ? 1 : 0;
    bits += out.blackboard_bits;
  }
  std::printf("reduction: %d/%d correct, avg blackboard bits %.0f over "
              "DISJ universe m=%zu\n",
              correct, trials, static_cast<double>(bits) / trials, m);
  std::printf("implied: R rounds of triangle detection => %.0f * R bits of "
              "3-NOF communication; deterministic DISJ_m needs Ω(m) bits "
              "(Rao–Yehudayoff), so R >= ~m/(n b) = %.2f here (Cor. 25)\n",
              static_cast<double>(rs.graph.num_vertices()) * bandwidth,
              implied_triangle_round_bound(rs, bandwidth));
  return 0;
}
