// Lemma 13 end to end: use a subgraph-detection protocol to solve 2-party
// set disjointness, demonstrating why fast detection is impossible.
//
// Builds the Lemma 14 (K_4, K_{N,N}) lower-bound graph, verifies its
// Observation 11 properties by machine, then feeds random disjoint /
// intersecting instances through the reduction and prints the exchanged
// bits against the instance size |E_F| = N^2 — the quantity the
// communication-complexity bound says cannot be beaten.
//
//   ./lowerbound_demo [N] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/turan_detect.h"
#include "graph/generators.h"
#include "lowerbound/clique_lb.h"
#include "lowerbound/disjointness_reduction.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cclique;
  const int n_carrier = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  Rng rng(seed);

  auto lbg = clique_lower_bound_graph(/*l=*/4, n_carrier);
  std::printf("Lemma 14 gadget: G' has n=%d vertices, carrier K_{%d,%d} "
              "with |E_F|=%zu\n",
              lbg.g_prime.num_vertices(), n_carrier, n_carrier,
              lbg.f.edges().size());
  std::printf("verify structure: %s,  Observation 11: %s\n",
              verify_structure(lbg) ? "ok" : "FAIL",
              verify_observation_11(lbg, 20, rng) ? "ok" : "FAIL");

  BroadcastDetector detector = [&](CliqueBroadcast& net, const Graph& g) {
    return full_broadcast_detect(net, g, complete_graph(4)).contains_h;
  };

  const int bandwidth = 8;
  const std::size_t m = lbg.f.edges().size();
  std::printf("\nsolving DISJ_%zu through K4 detection (b=%d):\n", m, bandwidth);
  int correct = 0;
  std::uint64_t bits = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    DisjointnessInstance inst = (t % 2 == 0)
                                    ? random_disjoint_instance(m, 0.5, rng)
                                    : random_intersecting_instance(m, 0.5, rng);
    auto out = solve_disjointness_via_detection(lbg, inst, bandwidth, detector);
    correct += out.correct ? 1 : 0;
    bits += out.bits_exchanged;
    std::printf("  truth=%-12s answered=%-12s bits=%llu rounds=%d\n",
                inst.disjoint() ? "disjoint" : "intersecting",
                out.answered_disjoint ? "disjoint" : "intersecting",
                static_cast<unsigned long long>(out.bits_exchanged),
                out.detection_rounds);
  }
  std::printf("\n%d/%d correct;  avg bits = %.0f;  instance size = %zu\n",
              correct, trials, static_cast<double>(bits) / trials, m);
  std::printf("=> any detection protocol with R rounds yields a DISJ protocol "
              "of ~R*n*b bits; since DISJ_{N^2} needs Ω(N^2) bits, R = "
              "Ω(N^2/(n b)) = Ω(n/b)   (Theorem 15)\n");
  return 0;
}
