// Broadcast-clique subgraph detection, the Section 3.1 toolkit end to end:
// known Turán number (Theorem 7) vs the adaptive algorithm (Theorem 9).
//
// Detects a C4 in (a) a C4-free extremal polarity graph and (b) the same
// graph with one planted C4 — the adversarial pair for this problem — and
// reports rounds, bits, and which level of the sampling hierarchy the
// adaptive algorithm stopped at.
//
//   ./subgraph_detection [seed]
#include <cstdio>
#include <cstdlib>

#include "comm/clique_broadcast.h"
#include "core/adaptive_detect.h"
#include "core/turan_detect.h"
#include "graph/extremal.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

namespace {

void detect_both_ways(const char* label, const cclique::Graph& g,
                      const cclique::Graph& h, cclique::Rng& rng) {
  using namespace cclique;
  const int n = g.num_vertices();
  const int b = 16;
  {
    CliqueBroadcast net(n, b);
    auto r = turan_subgraph_detect(net, g, h);
    std::printf("  Theorem 7 : %-3s  rounds=%-5d bits=%-9llu cap=%d\n",
                r.contains_h ? "yes" : "no", r.stats.rounds,
                static_cast<unsigned long long>(r.stats.total_bits),
                r.degeneracy_cap);
  }
  {
    CliqueBroadcast net(n, b);
    auto r = adaptive_subgraph_detect(net, g, h, rng);
    std::printf("  Theorem 9 : %-3s  rounds=%-5d bits=%-9llu guess=%d level=%d "
                "runs=%d\n",
                r.contains_h ? "yes" : "no", r.stats.rounds,
                static_cast<unsigned long long>(r.stats.total_bits),
                r.final_guess, r.final_level, r.reconstruction_runs);
  }
  (void)label;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cclique;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  Rng rng(seed);

  const Graph h = cycle_graph(4);
  Graph hard_no = polarity_graph(7);  // C4-free, Θ(n^{3/2}) edges: worst case
  std::printf("C4-free polarity graph ER_7 (n=%d, m=%zu):\n",
              hard_no.num_vertices(), hard_no.num_edges());
  detect_both_ways("C4-free", hard_no, h, rng);

  Graph hard_yes = hard_no;
  plant_subgraph(hard_yes, h, rng);
  std::printf("same graph + one planted C4 (contains C4: %s):\n",
              contains_cycle(hard_yes, 4) ? "yes" : "no");
  detect_both_ways("planted", hard_yes, h, rng);

  // A sparse case where Theorem 7's advantage is extreme: tree patterns in
  // a forest have constant-size sketches.
  Graph forest = random_tree(hard_no.num_vertices(), rng);
  std::printf("random tree, detect P4 (tree pattern => O(log n / b) rounds):\n");
  detect_both_ways("tree", forest, path_graph(4), rng);
  return 0;
}
