// Theorem 2 walkthrough: compile a bounded-depth circuit into a
// CLIQUE-UCAST protocol and compare against direct evaluation.
//
// The example builds three circuit families the paper's Section 2 cares
// about — a parity tree (XOR / MOD2), a depth-2 MOD6 circuit (the CC[6]
// frontier), and one giant majority gate (threshold / TC0) — and reports,
// for each: depth, wires, the heavy/light split the compiler chose, and
// the measured rounds at the theorem's O(b+s) bandwidth.
//
//   ./circuit_simulation [n_players] [seed]
#include <cstdio>
#include <cstdlib>

#include "circuit/builders.h"
#include "comm/clique_unicast.h"
#include "core/circuit_sim.h"
#include "util/rng.h"

namespace {

void run_one(const char* name, const cclique::Circuit& c, int n,
             cclique::Rng& rng) {
  using namespace cclique;
  CircuitSimulation sim(c, n);
  const auto& plan = sim.plan();
  std::vector<bool> inputs(static_cast<std::size_t>(c.num_inputs()));
  for (auto&& x : inputs) x = rng.coin();

  CliqueUnicast net(n, plan.recommended_bandwidth);
  const CircuitSimResult result = sim.run_round_robin(net, inputs);
  const bool expect = c.evaluate(inputs)[0];

  std::printf(
      "%-18s depth=%-3d wires=%-8zu s=%-3d heavy=%-3d bandwidth=%-3d "
      "rounds=%-4d bits=%-10llu output=%d direct=%d %s\n",
      name, c.depth(), c.num_wires(), plan.s, plan.heavy_gates,
      plan.recommended_bandwidth, result.stats.rounds,
      static_cast<unsigned long long>(result.stats.total_bits),
      static_cast<int>(result.outputs[0]), static_cast<int>(expect),
      result.outputs[0] == expect ? "OK" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cclique;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  Rng rng(seed);
  const int inputs = n * n;  // the paper's {0,1}^{n^2} input convention

  std::printf("Simulating circuits over %d inputs on %d players "
              "(Theorem 2 compiler)\n\n", inputs, n);
  run_one("parity(XOR tree)", parity_tree(inputs, 4), n, rng);
  run_one("MOD6-of-MOD6", mod_mod_circuit(inputs, 6, 2 * n, 16, rng), n, rng);
  run_one("majority(n^2)", majority(inputs), n, rng);
  Rng fuzz(seed + 1);
  run_one("random depth-6", random_layered_circuit(inputs, 2 * n, 6, 8, fuzz),
          n, rng);
  return 0;
}
