// Quickstart: simulate triangle detection in both congested-clique regimes.
//
// Builds a random graph with a planted triangle, then runs
//   (1) the deterministic Dolev–Lenzen–Peled detector on CLIQUE-UCAST, and
//   (2) the Theorem 7 Turán-bound detector on CLIQUE-BCAST,
// printing the exact round and bit accounting the engines measured.
//
//   ./quickstart [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "comm/clique_broadcast.h"
#include "comm/clique_unicast.h"
#include "core/dlp_triangle.h"
#include "core/turan_detect.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace cclique;
  const int n = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const int bandwidth = 32;

  Rng rng(seed);
  Graph g = gnp(n, 2.0 / n, rng);
  plant_subgraph(g, complete_graph(3), rng);
  std::printf("input: n=%d, m=%zu edges, %llu triangles (ground truth)\n", n,
              g.num_edges(),
              static_cast<unsigned long long>(count_triangles(g)));

  {
    CliqueUnicast net(n, bandwidth);
    const DlpResult r = dlp_triangle_detect(net, g);
    std::printf("CLIQUE-UCAST  (DLP, deterministic): detected=%s  rounds=%d  "
                "total_bits=%llu  groups=%d\n",
                r.detected ? "yes" : "no", r.stats.rounds,
                static_cast<unsigned long long>(r.stats.total_bits), r.groups);
  }
  {
    CliqueBroadcast net(n, bandwidth);
    const TuranDetectResult r = turan_subgraph_detect(net, g, complete_graph(3));
    std::printf("CLIQUE-BCAST  (Theorem 7 sketches):  detected=%s  rounds=%d  "
                "total_bits=%llu  degeneracy_cap=%d  reconstructed=%s\n",
                r.contains_h ? "yes" : "no", r.stats.rounds,
                static_cast<unsigned long long>(r.stats.total_bits),
                r.degeneracy_cap, r.reconstructed ? "yes" : "no");
  }
  return 0;
}
